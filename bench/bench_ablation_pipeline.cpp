// Ablation — MoT contention behaviour (the pipelining study of ref [10]).
//
// Sweeps synthetic load on the MoT transport: per-bank round-robin
// arbitration keeps latency near the pipeline depth until banks saturate.
// Also reports the latency of each power state under uniform traffic.
#include <iostream>
#include <vector>

#include "cacti/sram_model.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/mot_interconnect.hpp"
#include "harness.hpp"
#include "sim/sweep_runner.hpp"

int main(int argc, char** argv) {
  using namespace mot3d;
  const bench::Options opt = bench::parse_options(argc, argv);

  const phys::TechnologyParams tech = phys::default_technology();
  const phys::FloorplanParams fp;
  const cacti::SramBankConfig bank;
  const core::MotTimingModel model(tech, fp, bank);

  std::cout << "### Ablation: MoT latency vs offered load (uniform traffic)\n";

  TextTable tbl("request latency (inject -> bank) vs per-core injection rate");
  tbl.set_header({"state", "rate", "mean (cy)", "p95 (cy)", "arb wait/req (cy)"});

  // Each (state, rate) combination drives its own MotInterconnect instance;
  // the combinations share only the immutable timing model, so they fan out
  // across the --threads pool with per-index result rows.
  struct Combo {
    const core::PowerState* state;
    double rate;
  };
  std::vector<Combo> combos;
  for (const core::PowerState& s : core::PowerState::paper_states()) {
    for (double rate : {0.02, 0.05, 0.10, 0.20}) combos.push_back({&s, rate});
  }
  std::vector<std::vector<std::string>> rows(combos.size());

  sim::SweepRunner runner(opt.threads);
  runner.parallel_for(combos.size(), [&](std::size_t i) {
    const core::PowerState& s = *combos[i].state;
    const double rate = combos[i].rate;
    core::MotInterconnect icn(model, s);
    Histogram lat(1, 128);
    icn.set_request_sink([&lat](const MemRequest& r, Cycle t) {
      lat.add(t - r.issue_cycle);
    });
    icn.set_response_sink([](const MemResponse&, Cycle) {});
    // Cores re-inject after delivery with probability `rate` per cycle.
    Rng rng(7);
    const Cycle horizon = 20000;
    std::uint64_t seq = 1;
    for (Cycle t = 0; t < horizon; ++t) {
      for (std::size_t th = 0; th < s.active_cores(); ++th) {
        const CoreId c = s.core_of_thread(th);
        if (rng.next_double() < rate) {
          MemRequest r{.id = seq++, .core = c,
                       .bank = static_cast<BankId>(rng.next_below(s.total_banks())),
                       .addr = 0, .is_write = false, .issue_cycle = t};
          (void)icn.try_inject_request(r, t);  // dropped if core busy
        }
      }
      icn.tick(t);
    }
    const double waits =
        static_cast<double>(icn.stats().arbitration_wait_cycles) /
        static_cast<double>(std::max<std::uint64_t>(1, icn.stats().requests_delivered));
    rows[i] = {s.name(), fmt_fixed(rate, 2), fmt_fixed(lat.mean(), 1),
               std::to_string(lat.quantile(0.95)), fmt_fixed(waits, 2)};
  });
  for (const auto& row : rows) tbl.add_row(row);
  tbl.print(std::cout);
  return 0;
}
