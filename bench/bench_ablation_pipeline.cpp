// Ablation — MoT contention behaviour (the pipelining study of ref [10]).
//
// Sweeps synthetic load on the MoT transport: per-bank round-robin
// arbitration keeps latency near the pipeline depth until banks saturate.
// Also reports the latency of each power state under uniform traffic.
//
// Thin wrapper over the registered "ablation_pipeline" scenario.
#include "harness.hpp"

int main(int argc, char** argv) {
  return mot3d::bench::scenario_main("ablation_pipeline", argc, argv);
}
