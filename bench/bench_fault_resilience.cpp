// Fault-resilience sweep: TSV/link/bank fault injection with graceful
// degradation on the MoT vs structured failure on the packet-switched
// mesh (see src/fault/).
#include "harness.hpp"

int main(int argc, char** argv) {
  return mot3d::bench::scenario_main("fault_resilience", argc, argv);
}
