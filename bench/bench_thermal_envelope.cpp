// Thermal envelope sweep: stack temperatures, governor throttling and
// leakage feedback across ambient x ceiling x fabric (see src/thermal/).
#include "harness.hpp"

int main(int argc, char** argv) {
  return mot3d::bench::scenario_main("thermal_envelope", argc, argv);
}
