// Coherence sharing sweep: directory-MESI invalidation/upgrade/forward
// traffic for the four sharing patterns across fabric x power state
// (see src/coherence/).
#include "harness.hpp"

int main(int argc, char** argv) {
  return mot3d::bench::scenario_main("coherence_sharing", argc, argv);
}
