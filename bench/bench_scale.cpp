// Scale-out throughput bench: the perf trajectory behind BENCH_scale.json.
//
// Runs a (core count x sharing pattern) grid on the MoT fabric — the only
// fabric with scale-out shapes — at `FullNx2N` power states, one cluster
// simulation per cell, and reports modeled results (cycles, instructions)
// next to simulator throughput (wall seconds, simulated cycles/s).  The
// committed baseline (BENCH_scale.json at the repo root) pins both:
//
//  * modeled metrics are deterministic, so they must match the baseline
//    EXACTLY — any drift means simulator behaviour changed and the golden
//    story needs a deliberate refresh;
//  * cycles/s is machine- and load-dependent, so it is compared with a
//    deliberately loose relative tolerance (default 0.5: fail only when a
//    cell's throughput drops below half the baseline).  The tolerance is
//    wide enough to absorb CI-runner noise yet still catches the
//    order-of-magnitude regressions that matter (an accidental O(cores)
//    scan re-entering the per-cycle hot path).
//
// Unlike the per-figure benches this binary owns its command line (the
// shared harness rejects unknown flags by design):
//
//   bench_scale [--cores=64,256,1024] [--patterns=all_to_all,...]
//               [--scale=<f>] [--seed=<u64>] [--scheduler=event|dense]
//               [--timeout=<seconds>] [--json=<path>]
//               [--baseline=<path>] [--update-baseline]
//               [--tolerance=<frac>]
//
// Exit codes (asserted by tests/soak_harness.py --bench and the CI
// perf-guardrail job):
//   0  grid ran; no baseline requested, or baseline matched
//   1  regression: modeled mismatch, throughput below tolerance, or a
//      cell's simulation failed (watchdog timeout, config error)
//   2  usage error (unknown flag, malformed value)
//   3  baseline missing, unparsable, or incompatible with this invocation
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "sim/json_reader.hpp"
#include "sim/perf_report.hpp"
#include "sim/scenario.hpp"
#include "workload/app_profile.hpp"

namespace {

using mot3d::sim::JsonArray;
using mot3d::sim::JsonObject;
using mot3d::sim::JsonReader;
using mot3d::sim::JsonValue;

constexpr double kDefaultTolerance = 0.5;
constexpr double kDefaultScale = 0.02;

struct Options {
  std::vector<std::size_t> cores{64, 256, 1024};
  std::vector<std::string> patterns{"all_to_all", "producer_consumer",
                                    "read_mostly", "migratory"};
  double scale = kDefaultScale;
  std::uint64_t seed = 42;
  mot3d::cluster::SchedulerMode scheduler =
      mot3d::cluster::SchedulerMode::kEventDriven;
  double timeout_seconds = 0.0;
  std::string json_path;
  std::string baseline_path;
  bool update_baseline = false;
  double tolerance = kDefaultTolerance;
};

void print_usage(std::ostream& os) {
  os << "usage: bench_scale [--cores=<list>] [--patterns=<list>]\n"
     << "                   [--scale=<double>] [--seed=<u64>]\n"
     << "                   [--scheduler=event|dense] [--timeout=<seconds>]\n"
     << "                   [--json=<path>] [--baseline=<path>]\n"
     << "                   [--update-baseline] [--tolerance=<frac>]\n"
     << "  --cores       comma list of core counts (powers of two >= 16)\n"
     << "  --patterns    comma list of sharing workloads (see --patterns=help)\n"
     << "  --baseline    compare against a committed BENCH_scale.json;\n"
     << "                with --update-baseline, (re)write it instead\n"
     << "  --tolerance   allowed relative cycles/s drop per cell (default "
     << kDefaultTolerance << ")\n";
}

[[noreturn]] void usage_error(const std::string& msg) {
  std::cerr << "error: " << msg << "\n";
  print_usage(std::cerr);
  std::exit(2);
}

double parse_double(const std::string& flag, const std::string& v) {
  try {
    std::size_t pos = 0;
    const double d = std::stod(v, &pos);
    if (pos != v.size()) usage_error("malformed value in '" + flag + "'");
    return d;
  } catch (const std::exception&) {
    usage_error("malformed value in '" + flag + "'");
  }
}

std::uint64_t parse_u64(const std::string& flag, const std::string& v) {
  if (v.empty() || v[0] == '-') usage_error("malformed value in '" + flag + "'");
  try {
    std::size_t pos = 0;
    const std::uint64_t n = std::stoull(v, &pos);
    if (pos != v.size()) usage_error("malformed value in '" + flag + "'");
    return n;
  } catch (const std::exception&) {
    usage_error("malformed value in '" + flag + "'");
  }
}

std::vector<std::string> split_list(const std::string& v) {
  std::vector<std::string> out;
  std::string item;
  std::istringstream is(v);
  while (std::getline(is, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

Options parse_options(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--cores=", 0) == 0) {
      opt.cores.clear();
      for (const std::string& c : split_list(arg.substr(8))) {
        opt.cores.push_back(static_cast<std::size_t>(parse_u64(arg, c)));
      }
      if (opt.cores.empty()) usage_error("--cores= needs at least one count");
    } else if (arg.rfind("--patterns=", 0) == 0) {
      if (arg.substr(11) == "help") {
        for (const auto& n : mot3d::workload::sharing_profile_names()) {
          std::cout << n << "\n";
        }
        std::exit(0);
      }
      opt.patterns = split_list(arg.substr(11));
      if (opt.patterns.empty()) usage_error("--patterns= needs at least one name");
    } else if (arg.rfind("--scale=", 0) == 0) {
      opt.scale = parse_double(arg, arg.substr(8));
      if (!std::isfinite(opt.scale) || opt.scale <= 0.0) {
        usage_error("scale must be a positive finite number");
      }
    } else if (arg.rfind("--seed=", 0) == 0) {
      opt.seed = parse_u64(arg, arg.substr(7));
    } else if (arg.rfind("--scheduler=", 0) == 0) {
      const std::string mode = arg.substr(12);
      if (mode == "event") {
        opt.scheduler = mot3d::cluster::SchedulerMode::kEventDriven;
      } else if (mode == "dense") {
        opt.scheduler = mot3d::cluster::SchedulerMode::kDenseTick;
      } else {
        usage_error("unknown scheduler '" + mode + "' (want event|dense)");
      }
    } else if (arg.rfind("--timeout=", 0) == 0) {
      opt.timeout_seconds = parse_double(arg, arg.substr(10));
      if (!std::isfinite(opt.timeout_seconds) || opt.timeout_seconds < 0.0) {
        usage_error("--timeout must be a non-negative finite number");
      }
    } else if (arg.rfind("--json=", 0) == 0) {
      opt.json_path = arg.substr(7);
      if (opt.json_path.empty()) usage_error("--json= needs a path");
    } else if (arg.rfind("--baseline=", 0) == 0) {
      opt.baseline_path = arg.substr(11);
      if (opt.baseline_path.empty()) usage_error("--baseline= needs a path");
    } else if (arg == "--update-baseline") {
      opt.update_baseline = true;
    } else if (arg.rfind("--tolerance=", 0) == 0) {
      opt.tolerance = parse_double(arg, arg.substr(12));
      if (!std::isfinite(opt.tolerance) || opt.tolerance < 0.0 ||
          opt.tolerance >= 1.0) {
        usage_error("--tolerance must be in [0, 1)");
      }
    } else if (arg == "--help" || arg == "-h") {
      print_usage(std::cout);
      std::exit(0);
    } else {
      usage_error("unknown option '" + arg + "'");
    }
  }
  if (opt.update_baseline && opt.baseline_path.empty()) {
    usage_error("--update-baseline needs --baseline=<path>");
  }
  return opt;
}

// ---------------------------------------------------------------------------
// Grid execution
// ---------------------------------------------------------------------------

struct Cell {
  std::string app;
  std::size_t cores = 0;
  std::size_t banks = 0;
  std::string state;
  std::uint64_t cycles = 0;        ///< modeled; exact-match against baseline
  std::uint64_t instructions = 0;  ///< modeled; exact-match against baseline
  double wall_seconds = 0.0;
  double cycles_per_second = 0.0;
  /// Host-side wall seconds attributed per simulator phase (sampled, see
  /// obs::PhaseTimer).  Telemetry only: never compared against a baseline.
  mot3d::obs::PhaseSeconds phases;
  std::string error;  ///< non-empty if the simulation failed
};

std::string state_name_for(std::size_t cores) {
  // The paper's native shape is 16x32 ("Full"); scale-out shapes keep the
  // 2 banks/core ratio the MoT geometry assumes.
  if (cores == 16) return "Full";
  return "Full" + std::to_string(cores) + "x" + std::to_string(2 * cores);
}

Cell run_cell(const Options& opt, const std::string& app, std::size_t cores) {
  Cell cell;
  cell.app = app;
  cell.cores = cores;
  cell.banks = 2 * cores;
  cell.state = state_name_for(cores);

  mot3d::sim::ScenarioSpec spec;
  spec.name = "bench_scale";
  spec.description = "scale-out throughput cell";
  spec.kind = mot3d::sim::ScenarioSpec::Kind::kSweep;
  spec.apps = {app};
  spec.fabrics = {mot3d::cluster::Fabric::kMot};
  spec.dram_presets = {mot3d::mem::DramPreset::kDdr3_200ns};
  spec.has_golden = false;
  try {
    spec.power_states = {mot3d::sim::power_state_by_name(cell.state)};
  } catch (const std::exception& e) {
    cell.error = e.what();
    return cell;
  }

  mot3d::sim::ScenarioOptions sopt;
  sopt.scale = opt.scale;
  sopt.seed = opt.seed;
  sopt.threads = 1;  // one run per cell: thread pool would only add noise
  sopt.scheduler = opt.scheduler;
  sopt.timeout_seconds = opt.timeout_seconds;
  sopt.phase_timing = true;  // host-side clock reads; modeled metrics untouched

  try {
    const mot3d::sim::ScenarioOutcome outcome =
        mot3d::sim::run_scenario(spec, sopt);
    if (outcome.results.empty()) {
      cell.error = "grid expanded to zero runs";
      return cell;
    }
    if (!outcome.run_ok(0)) {
      cell.error = outcome.errors[0];
      return cell;
    }
    cell.cycles = outcome.results[0].cycles;
    cell.instructions = outcome.results[0].instructions;
    cell.wall_seconds = outcome.telemetry.wall_seconds;
    cell.cycles_per_second = outcome.telemetry.cycles_per_second();
    cell.phases = outcome.results[0].phase_seconds;
  } catch (const std::exception& e) {
    cell.error = e.what();
  }
  return cell;
}

JsonObject cell_to_json(const Cell& c) {
  JsonObject o;
  o.set("app", c.app)
      .set("cores", static_cast<std::uint64_t>(c.cores))
      .set("banks", static_cast<std::uint64_t>(c.banks))
      .set("state", c.state)
      .set("cycles", c.cycles)
      .set("instructions", c.instructions)
      .set("wall_seconds", c.wall_seconds)
      .set("cycles_per_second", c.cycles_per_second);
  // Telemetry-only extension: compare_against_baseline reads known keys
  // only, so old baselines stay compatible.
  if (c.phases.valid) {
    JsonObject p;
    p.set("workload", c.phases.workload)
        .set("coherence", c.phases.coherence)
        .set("fabric", c.phases.fabric)
        .set("l2", c.phases.l2)
        .set("dram", c.phases.dram);
    o.set_raw("phase_seconds", p.str());
  }
  return o;
}

std::string report_json(const Options& opt, const std::vector<Cell>& cells) {
  double total_wall = 0.0;
  std::uint64_t total_cycles = 0;
  JsonArray arr;
  for (const Cell& c : cells) {
    arr.push(cell_to_json(c));
    total_wall += c.wall_seconds;
    total_cycles += c.cycles;
  }
  JsonObject out;
  out.set("bench", "bench_scale")
      .set("scheduler", opt.scheduler ==
                                mot3d::cluster::SchedulerMode::kEventDriven
                            ? "event"
                            : "dense")
      .set("scale", opt.scale)
      .set("seed", opt.seed)
      .set_raw("cells", arr.str(2))
      .set("total_wall_seconds", total_wall)
      .set("total_simulated_cycles", total_cycles)
      .set("cycles_per_second",
           total_wall > 0.0 ? static_cast<double>(total_cycles) / total_wall
                            : 0.0);
  return out.str();
}

// ---------------------------------------------------------------------------
// Baseline comparison
// ---------------------------------------------------------------------------

struct BaselineCell {
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  double cycles_per_second = 0.0;
};

/// Exit code 3 helper: the baseline cannot be used at all.
[[noreturn]] void baseline_error(const std::string& msg) {
  std::cerr << "baseline error: " << msg << "\n"
            << "refresh with: bench_scale --baseline=<path> --update-baseline\n";
  std::exit(3);
}

int compare_against_baseline(const Options& opt, const std::vector<Cell>& cells) {
  std::ifstream in(opt.baseline_path);
  if (!in) baseline_error("cannot open '" + opt.baseline_path + "'");
  std::stringstream buf;
  buf << in.rdbuf();
  const std::optional<JsonValue> doc = JsonReader(buf.str()).parse();
  if (!doc || doc->type != JsonValue::Type::kObject) {
    baseline_error("'" + opt.baseline_path + "' is not a JSON object");
  }

  // The baseline is only meaningful for the knobs it was recorded with.
  const JsonValue* sched = doc->find("scheduler");
  const JsonValue* scale = doc->find("scale");
  const JsonValue* seed = doc->find("seed");
  const JsonValue* cells_v = doc->find("cells");
  if (!sched || sched->type != JsonValue::Type::kString || !scale ||
      scale->type != JsonValue::Type::kNumber || !seed ||
      seed->type != JsonValue::Type::kNumber || !cells_v ||
      cells_v->type != JsonValue::Type::kArray) {
    baseline_error("'" + opt.baseline_path + "' is missing required fields");
  }
  const std::string want_sched =
      opt.scheduler == mot3d::cluster::SchedulerMode::kEventDriven ? "event"
                                                                   : "dense";
  if (sched->string != want_sched || scale->number != opt.scale ||
      static_cast<std::uint64_t>(seed->number) != opt.seed) {
    baseline_error("baseline was recorded with --scheduler=" + sched->string +
                   " --scale=" + mot3d::sim::json_number(scale->number) +
                   " --seed=" +
                   std::to_string(static_cast<std::uint64_t>(seed->number)) +
                   "; rerun with matching flags or refresh it");
  }

  // Index baseline cells by (app, cores).  Modeled u64s round-trip exactly
  // through double for any value < 2^53 — far above any cell's budget.
  std::vector<std::pair<std::string, BaselineCell>> base;
  for (const JsonValue& c : cells_v->array) {
    const JsonValue* app = c.find("app");
    const JsonValue* cores = c.find("cores");
    const JsonValue* cycles = c.find("cycles");
    const JsonValue* instrs = c.find("instructions");
    const JsonValue* cps = c.find("cycles_per_second");
    if (!app || app->type != JsonValue::Type::kString || !cores || !cycles ||
        !instrs || !cps) {
      baseline_error("malformed cell in '" + opt.baseline_path + "'");
    }
    const std::string key =
        app->string + "@" +
        std::to_string(static_cast<std::size_t>(cores->number));
    base.emplace_back(key, BaselineCell{
        static_cast<std::uint64_t>(cycles->number),
        static_cast<std::uint64_t>(instrs->number), cps->number});
  }

  int regressions = 0;
  for (const Cell& c : cells) {
    const std::string key = c.app + "@" + std::to_string(c.cores);
    const BaselineCell* b = nullptr;
    for (const auto& [k, v] : base) {
      if (k == key) { b = &v; break; }
    }
    if (b == nullptr) {
      baseline_error("cell " + key + " missing from '" + opt.baseline_path +
                     "' (grid changed?)");
    }
    if (c.cycles != b->cycles || c.instructions != b->instructions) {
      std::cerr << "REGRESSION " << key << ": modeled drift — cycles "
                << c.cycles << " vs baseline " << b->cycles << ", instructions "
                << c.instructions << " vs " << b->instructions
                << " (simulator behaviour changed; refresh deliberately)\n";
      ++regressions;
      continue;
    }
    const double floor = b->cycles_per_second * (1.0 - opt.tolerance);
    if (c.cycles_per_second < floor) {
      std::cerr << "REGRESSION " << key << ": throughput "
                << mot3d::sim::json_number(c.cycles_per_second)
                << " cycles/s below tolerance floor "
                << mot3d::sim::json_number(floor) << " (baseline "
                << mot3d::sim::json_number(b->cycles_per_second)
                << ", tolerance " << opt.tolerance << ")\n";
      ++regressions;
    }
  }
  if (regressions > 0) {
    std::cerr << regressions << " cell(s) regressed against '"
              << opt.baseline_path << "'\n";
    return 1;
  }
  std::cout << "baseline OK: " << cells.size() << " cell(s) within tolerance "
            << opt.tolerance << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);

  std::vector<Cell> cells;
  int failed = 0;
  std::cout << "bench_scale: " << opt.cores.size() << " core count(s) x "
            << opt.patterns.size() << " pattern(s), scale=" << opt.scale
            << ", scheduler="
            << (opt.scheduler == mot3d::cluster::SchedulerMode::kEventDriven
                    ? "event"
                    : "dense")
            << "\n";
  std::cout << "  app                 cores   banks        cycles  "
            << "   wall_s      cycles/s\n";
  for (const std::string& app : opt.patterns) {
    for (const std::size_t cores : opt.cores) {
      Cell cell = run_cell(opt, app, cores);
      if (!cell.error.empty()) {
        std::cerr << "FAILED " << app << "@" << cores << ": " << cell.error
                  << "\n";
        ++failed;
      } else {
        std::printf("  %-18s %6zu  %6zu  %12llu  %9.3f  %12.0f\n",
                    cell.app.c_str(), cell.cores, cell.banks,
                    static_cast<unsigned long long>(cell.cycles),
                    cell.wall_seconds, cell.cycles_per_second);
      }
      cells.push_back(std::move(cell));
    }
  }
  if (failed > 0) {
    std::cerr << failed << " cell(s) failed\n";
    return 1;
  }

  const std::string doc = report_json(opt, cells);
  if (!opt.json_path.empty()) {
    std::ofstream out(opt.json_path);
    if (!out) {
      std::cerr << "error: cannot write '" << opt.json_path << "'\n";
      return 1;
    }
    out << doc << "\n";
  }

  if (!opt.baseline_path.empty()) {
    if (opt.update_baseline) {
      std::ofstream out(opt.baseline_path);
      if (!out) {
        std::cerr << "error: cannot write '" << opt.baseline_path << "'\n";
        return 1;
      }
      out << doc << "\n";
      std::cout << "baseline updated: " << opt.baseline_path << "\n";
      return 0;
    }
    return compare_against_baseline(opt, cells);
  }
  return 0;
}
