// Shared experiment harness for the per-figure bench binaries.
//
// Every binary accepts:
//   --scale=<double>    fraction of each app's full instruction budget
//                       (default 0.5 balances runtime against working-set
//                       reuse; Fig. 6 benches default to 0.25)
//   --seed=<u64>        workload RNG seed (default 42)
//   --threads=<n>       sweep worker threads; 0 = hardware concurrency
//   --json=<path>       write a perf-telemetry JSON report (BENCH_*.json)
//   --scheduler=event|dense
//                       cluster time-advance mode (default: event; results
//                       are bit-identical, only wall-clock differs)
// Unknown flags are rejected with an error — a typo like --sacle=0.5 must
// never silently fall back to the default.
//
// Results are shape-stable in scale — the paper's absolute testbed numbers
// are not reproducible by construction (see DESIGN.md), so each bench
// prints our measured series next to the paper's reported deltas.
//
// Sweeps run through sim::SweepRunner: configurations are queued first,
// executed across a thread pool, and consumed in queue order, so output is
// byte-identical at any thread count.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/table.hpp"
#include "sim/perf_report.hpp"
#include "sim/sweep_runner.hpp"
#include "workload/app_profile.hpp"

namespace mot3d::bench {

struct Options {
  double scale = 0.5;
  std::uint64_t seed = 42;
  unsigned threads = 0;  ///< 0 = hardware concurrency
  std::string json_path;
  cluster::SchedulerMode scheduler = cluster::SchedulerMode::kEventDriven;
};

inline void print_usage(std::ostream& os) {
  os << "usage: bench [--scale=<double>] [--seed=<u64>] [--threads=<n>]\n"
     << "             [--json=<path>] [--scheduler=event|dense]\n";
}

[[noreturn]] inline void usage_error(const std::string& msg) {
  std::cerr << "error: " << msg << "\n";
  print_usage(std::cerr);
  std::exit(2);
}

/// Whole-string numeric parsers: trailing junk (--scale=0,75, --seed=5abc)
/// must fail loudly, not silently truncate at the first bad character.
inline double parse_double_value(const std::string& flag, const std::string& v) {
  std::size_t pos = 0;
  const double d = std::stod(v, &pos);  // throws on empty/non-numeric
  if (pos != v.size()) usage_error("malformed value in '" + flag + "'");
  return d;
}

inline std::uint64_t parse_u64_value(const std::string& flag, const std::string& v) {
  if (v.empty() || v[0] == '-') usage_error("malformed value in '" + flag + "'");
  std::size_t pos = 0;
  const std::uint64_t n = std::stoull(v, &pos);
  if (pos != v.size()) usage_error("malformed value in '" + flag + "'");
  return n;
}

/// `default_scale`: the Fig. 7/8 EDP experiments need working-set *reuse*
/// (scale 0.5); the Fig. 6 interconnect comparison has no capacity story
/// and uses 0.25 to keep the 32 packet-switched runs quick.
inline Options parse_options(int argc, char** argv, double default_scale = 0.5) {
  Options opt;
  opt.scale = default_scale;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    try {
      if (arg.rfind("--scale=", 0) == 0) {
        opt.scale = parse_double_value(arg, arg.substr(8));
      } else if (arg.rfind("--seed=", 0) == 0) {
        opt.seed = parse_u64_value(arg, arg.substr(7));
      } else if (arg.rfind("--threads=", 0) == 0) {
        const std::uint64_t n = parse_u64_value(arg, arg.substr(10));
        if (n > 1024) {
          usage_error("--threads=" + arg.substr(10) + " is out of range (max 1024)");
        }
        opt.threads = static_cast<unsigned>(n);
      } else if (arg.rfind("--json=", 0) == 0) {
        opt.json_path = arg.substr(7);
        if (opt.json_path.empty()) usage_error("--json= needs a path");
      } else if (arg.rfind("--scheduler=", 0) == 0) {
        const std::string mode = arg.substr(12);
        if (mode == "event") {
          opt.scheduler = cluster::SchedulerMode::kEventDriven;
        } else if (mode == "dense") {
          opt.scheduler = cluster::SchedulerMode::kDenseTick;
        } else {
          usage_error("unknown scheduler '" + mode + "' (want event|dense)");
        }
      } else if (arg == "--help" || arg == "-h") {
        print_usage(std::cout);
        std::exit(0);
      } else {
        usage_error("unknown option '" + arg + "'");
      }
    } catch (const std::invalid_argument&) {
      usage_error("malformed value in '" + arg + "'");
    } catch (const std::out_of_range&) {
      usage_error("value out of range in '" + arg + "'");
    }
  }
  if (const char* env = std::getenv("MOT3D_SCALE")) {
    try {
      opt.scale = parse_double_value("MOT3D_SCALE=" + std::string(env), env);
    } catch (const std::invalid_argument&) {
      usage_error("malformed value in 'MOT3D_SCALE=" + std::string(env) + "'");
    } catch (const std::out_of_range&) {
      usage_error("value out of range in 'MOT3D_SCALE=" + std::string(env) + "'");
    }
  }
  // Covers both --scale= and MOT3D_SCALE: the workload plan scales an
  // instruction budget, so the fraction must be a positive finite number.
  if (!std::isfinite(opt.scale) || opt.scale <= 0.0) {
    usage_error("scale must be a positive finite number, got " +
                std::to_string(opt.scale));
  }
  return opt;
}

inline cluster::ClusterConfig make_config(const std::string& app,
                                          cluster::Fabric fabric,
                                          const core::PowerState& state,
                                          mem::DramPreset dram,
                                          const Options& opt) {
  cluster::ClusterConfig cfg = cluster::make_paper_config(
      workload::profile_by_name(app), fabric, state, dram, opt.scale, opt.seed);
  cfg.scheduler = opt.scheduler;
  return cfg;
}

/// One-off run (tests, ad-hoc probes).  Sweeping benches use Sweep below.
inline cluster::SimResult run_app(const std::string& app, cluster::Fabric fabric,
                                  const core::PowerState& state,
                                  mem::DramPreset dram, const Options& opt) {
  return cluster::Cluster(make_config(app, fabric, state, dram, opt)).run();
}

/// Queue-then-run sweep façade over sim::SweepRunner.  Queue every
/// configuration with add() (which returns the result index), call run()
/// once, then read results in any order; finally report() writes the
/// --json perf telemetry.
class Sweep {
 public:
  Sweep(const Options& opt, std::string bench_name)
      : opt_(opt), name_(std::move(bench_name)), runner_(opt.threads) {}

  std::size_t add(const std::string& app, cluster::Fabric fabric,
                  const core::PowerState& state, mem::DramPreset dram) {
    const cluster::ClusterConfig cfg = make_config(app, fabric, state, dram, opt_);
    tasks_.push_back([cfg] { return cluster::Cluster(cfg).run(); });
    return tasks_.size() - 1;
  }

  void run() {
    results_ = runner_.run(tasks_);
    tasks_.clear();
  }

  const cluster::SimResult& operator[](std::size_t i) const {
    return results_.at(i);
  }
  std::size_t size() const { return results_.size(); }
  const sim::PerfTelemetry& telemetry() const { return runner_.telemetry(); }

  /// Print the wall-clock summary and write the --json report (if any).
  /// `extra` lets a bench append its own fields to the JSON object.
  void report(sim::JsonObject extra = {}) const {
    const sim::PerfTelemetry& t = runner_.telemetry();
    std::cout << "[perf] " << t.runs << " runs, "
              << fmt_fixed(t.wall_seconds, 2) << " s wall, "
              << fmt_fixed(t.cycles_per_second() / 1e6, 2)
              << " M simulated cycles/s, threads=" << t.threads
              << ", scheduler=" << cluster::scheduler_name(opt_.scheduler) << "\n";
    if (opt_.json_path.empty()) return;
    sim::JsonObject fields;
    fields.set("scale", opt_.scale)
        .set("seed", opt_.seed)
        .set("scheduler", cluster::scheduler_name(opt_.scheduler));
    fields.merge(extra);
    if (sim::write_perf_report(opt_.json_path, name_, t, fields)) {
      std::cout << "[perf] report written to " << opt_.json_path << "\n";
    } else {
      std::cerr << "warning: could not write " << opt_.json_path << "\n";
    }
  }

 private:
  Options opt_;
  std::string name_;
  sim::SweepRunner runner_;
  std::vector<sim::SweepRunner::Task> tasks_;
  std::vector<cluster::SimResult> results_;
};

inline double average(const std::vector<double>& v) {
  double s = 0.0;
  for (double x : v) s += x;
  return v.empty() ? 0.0 : s / static_cast<double>(v.size());
}

inline double max_of(const std::vector<double>& v) {
  double m = v.empty() ? 0.0 : v[0];
  for (double x : v) m = std::max(m, x);
  return m;
}

/// "reduction" convention used throughout the paper: 1 - new/old.
inline double reduction(double baseline, double value) {
  return baseline == 0.0 ? 0.0 : 1.0 - value / baseline;
}

inline void print_header(const std::string& what, const Options& opt) {
  std::cout << "\n### " << what << "  (scale=" << opt.scale << ", seed=" << opt.seed
            << ")\n";
}

}  // namespace mot3d::bench
