// Shared experiment harness for the per-figure bench binaries.
//
// Every binary accepts:  --scale=<double>  (fraction of each app's full
// instruction budget; default 0.5 balances runtime against working-set reuse) and
// --seed=<u64>.  Results are shape-stable in scale — the paper's absolute
// testbed numbers are not reproducible by construction (see DESIGN.md), so
// each bench prints our measured series next to the paper's reported
// deltas for comparison.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/table.hpp"
#include "workload/app_profile.hpp"

namespace mot3d::bench {

struct Options {
  double scale = 0.5;
  std::uint64_t seed = 42;
};

/// `default_scale`: the Fig. 7/8 EDP experiments need working-set *reuse*
/// (scale 0.5); the Fig. 6 interconnect comparison has no capacity story
/// and uses 0.25 to keep the 32 packet-switched runs quick.
inline Options parse_options(int argc, char** argv, double default_scale = 0.5) {
  Options opt;
  opt.scale = default_scale;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--scale=", 0) == 0) opt.scale = std::stod(arg.substr(8));
    if (arg.rfind("--seed=", 0) == 0) opt.seed = std::stoull(arg.substr(7));
  }
  if (const char* env = std::getenv("MOT3D_SCALE")) opt.scale = std::stod(env);
  return opt;
}

inline cluster::SimResult run_app(const std::string& app, cluster::Fabric fabric,
                                  const core::PowerState& state,
                                  mem::DramPreset dram, const Options& opt) {
  cluster::ClusterConfig cfg = cluster::make_paper_config(
      workload::profile_by_name(app), fabric, state, dram, opt.scale, opt.seed);
  return cluster::Cluster(cfg).run();
}

inline double average(const std::vector<double>& v) {
  double s = 0.0;
  for (double x : v) s += x;
  return v.empty() ? 0.0 : s / static_cast<double>(v.size());
}

inline double max_of(const std::vector<double>& v) {
  double m = v.empty() ? 0.0 : v[0];
  for (double x : v) m = std::max(m, x);
  return m;
}

/// "reduction" convention used throughout the paper: 1 - new/old.
inline double reduction(double baseline, double value) {
  return baseline == 0.0 ? 0.0 : 1.0 - value / baseline;
}

inline void print_header(const std::string& what, const Options& opt) {
  std::cout << "\n### " << what << "  (scale=" << opt.scale << ", seed=" << opt.seed
            << ")\n";
}

}  // namespace mot3d::bench
