// Shared command-line front-end for the per-figure bench binaries.
//
// Every figure/table experiment is a declarative sim::ScenarioSpec in the
// scenario registry (src/sim/scenario_registry.*); each bench binary is a
// one-line wrapper: `return scenario_main("<registry name>", argc, argv);`.
// The `mot3d_experiments` CLI runs the same registry entries by name.
//
// Every binary accepts:
//   --scale=<double>    fraction of each app's full instruction budget
//                       (default = the scenario's registered default)
//   --seed=<u64>        workload RNG seed (default 42)
//   --threads=<n>       sweep worker threads; 0 = hardware concurrency
//   --json=<path>       write a perf + metrics JSON report
//   --scheduler=event|dense
//                       cluster time-advance mode (default: event; results
//                       are bit-identical, only wall-clock differs)
//   --timeout=<seconds> per-run wall-clock budget (0 = none); a run over
//                       budget dies with a watchdog error recorded against
//                       that run, and the binary exits non-zero
//   --trace=<path>      write a Chrome-trace-event JSON of every run (one
//                       process per run, one track per core / L2 bank /
//                       fabric / governor; open in Perfetto)
//   --metrics=<path>    write the interval-metrics time series (JSON, or
//                       long-format CSV when the path ends in .csv)
// Unknown flags are rejected with an error — a typo like --sacle=0.5 must
// never silently fall back to the default.
//
// Results are shape-stable in scale — the paper's absolute testbed numbers
// are not reproducible by construction (see DESIGN.md), so each bench
// prints our measured series next to the paper's reported deltas.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>

#include "cluster/cluster.hpp"
#include "sim/scenario.hpp"
#include "sim/scenario_registry.hpp"

namespace mot3d::bench {

struct Options {
  double scale = 0.5;
  std::uint64_t seed = 42;
  unsigned threads = 0;  ///< 0 = hardware concurrency
  std::string json_path;
  cluster::SchedulerMode scheduler = cluster::SchedulerMode::kEventDriven;
  double timeout_seconds = 0.0;  ///< per-run watchdog wall budget (0 = none)
  std::string trace_path;        ///< Chrome-trace destination ("" = off)
  std::string metrics_path;      ///< interval-metrics destination ("" = off)
};

inline void print_usage(std::ostream& os) {
  os << "usage: bench [--scale=<double>] [--seed=<u64>] [--threads=<n>]\n"
     << "             [--json=<path>] [--scheduler=event|dense]\n"
     << "             [--timeout=<seconds>] [--trace=<path>] [--metrics=<path>]\n";
}

[[noreturn]] inline void usage_error(const std::string& msg) {
  std::cerr << "error: " << msg << "\n";
  print_usage(std::cerr);
  std::exit(2);
}

/// Whole-string numeric parsers: trailing junk (--scale=0,75, --seed=5abc)
/// must fail loudly, not silently truncate at the first bad character.
inline double parse_double_value(const std::string& flag, const std::string& v) {
  std::size_t pos = 0;
  const double d = std::stod(v, &pos);  // throws on empty/non-numeric
  if (pos != v.size()) usage_error("malformed value in '" + flag + "'");
  return d;
}

inline std::uint64_t parse_u64_value(const std::string& flag, const std::string& v) {
  if (v.empty() || v[0] == '-') usage_error("malformed value in '" + flag + "'");
  std::size_t pos = 0;
  const std::uint64_t n = std::stoull(v, &pos);
  if (pos != v.size()) usage_error("malformed value in '" + flag + "'");
  return n;
}

/// `default_scale` comes from the scenario registry entry (the Fig. 7/8
/// EDP experiments need working-set *reuse* at 0.5; Fig. 6 has no capacity
/// story and uses 0.25 to keep the 32 packet-switched runs quick).
inline Options parse_options(int argc, char** argv, double default_scale = 0.5) {
  Options opt;
  opt.scale = default_scale;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    try {
      if (arg.rfind("--scale=", 0) == 0) {
        opt.scale = parse_double_value(arg, arg.substr(8));
      } else if (arg.rfind("--seed=", 0) == 0) {
        opt.seed = parse_u64_value(arg, arg.substr(7));
      } else if (arg.rfind("--threads=", 0) == 0) {
        const std::uint64_t n = parse_u64_value(arg, arg.substr(10));
        if (n > 1024) {
          usage_error("--threads=" + arg.substr(10) + " is out of range (max 1024)");
        }
        opt.threads = static_cast<unsigned>(n);
      } else if (arg.rfind("--json=", 0) == 0) {
        opt.json_path = arg.substr(7);
        if (opt.json_path.empty()) usage_error("--json= needs a path");
      } else if (arg.rfind("--trace=", 0) == 0) {
        opt.trace_path = arg.substr(8);
        if (opt.trace_path.empty()) usage_error("--trace= needs a path");
      } else if (arg.rfind("--metrics=", 0) == 0) {
        opt.metrics_path = arg.substr(10);
        if (opt.metrics_path.empty()) usage_error("--metrics= needs a path");
      } else if (arg.rfind("--timeout=", 0) == 0) {
        opt.timeout_seconds = parse_double_value(arg, arg.substr(10));
        if (!std::isfinite(opt.timeout_seconds) || opt.timeout_seconds < 0.0) {
          usage_error("--timeout must be a non-negative finite number of seconds");
        }
      } else if (arg.rfind("--scheduler=", 0) == 0) {
        const std::string mode = arg.substr(12);
        if (mode == "event") {
          opt.scheduler = cluster::SchedulerMode::kEventDriven;
        } else if (mode == "dense") {
          opt.scheduler = cluster::SchedulerMode::kDenseTick;
        } else {
          usage_error("unknown scheduler '" + mode + "' (want event|dense)");
        }
      } else if (arg == "--help" || arg == "-h") {
        print_usage(std::cout);
        std::exit(0);
      } else {
        usage_error("unknown option '" + arg + "'");
      }
    } catch (const std::invalid_argument&) {
      usage_error("malformed value in '" + arg + "'");
    } catch (const std::out_of_range&) {
      usage_error("value out of range in '" + arg + "'");
    }
  }
  if (const char* env = std::getenv("MOT3D_SCALE")) {
    try {
      opt.scale = parse_double_value("MOT3D_SCALE=" + std::string(env), env);
    } catch (const std::invalid_argument&) {
      usage_error("malformed value in 'MOT3D_SCALE=" + std::string(env) + "'");
    } catch (const std::out_of_range&) {
      usage_error("value out of range in 'MOT3D_SCALE=" + std::string(env) + "'");
    }
  }
  // Covers both --scale= and MOT3D_SCALE: the workload plan scales an
  // instruction budget, so the fraction must be a positive finite number.
  if (!std::isfinite(opt.scale) || opt.scale <= 0.0) {
    usage_error("scale must be a positive finite number, got " +
                std::to_string(opt.scale));
  }
  return opt;
}

inline sim::ScenarioOptions to_scenario_options(const Options& opt) {
  sim::ScenarioOptions sopt;
  sopt.scale = opt.scale;
  sopt.seed = opt.seed;
  sopt.threads = opt.threads;
  sopt.scheduler = opt.scheduler;
  sopt.json_path = opt.json_path;
  sopt.timeout_seconds = opt.timeout_seconds;
  sopt.trace_path = opt.trace_path;
  sopt.metrics_path = opt.metrics_path;
  return sopt;
}

/// The whole body of a bench binary: look the scenario up in the registry,
/// parse the standard flags (defaults from the spec), run and present.
inline int scenario_main(const std::string& name, int argc, char** argv) {
  const sim::ScenarioSpec* spec = sim::find_scenario(name);
  if (spec == nullptr) {
    std::cerr << "error: scenario '" << name << "' is not registered\n";
    return 2;
  }
  const Options opt = parse_options(argc, argv, spec->default_scale);
  try {
    return sim::run_and_present(*spec, to_scenario_options(opt), std::cout);
  } catch (const std::exception& e) {
    // Per-run failures are isolated inside the sweep; anything that still
    // escapes (config errors, allocation failure) exits with one line.
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace mot3d::bench
