// Fig. 6(b) — application execution time per interconnect, DRAM 200 ns.
//
// Paper: "3-D MoT reduces the execution time by 13.01%, 11.16%, and 13.34%
// on average, compared with 3-D Mesh, 3-D Hybrid Bus-Mesh, and 3-D Hybrid
// Bus-Tree, respectively."
//
// Thin wrapper over the registered "fig6b_exec_time" scenario.
#include "harness.hpp"

int main(int argc, char** argv) {
  return mot3d::bench::scenario_main("fig6b_exec_time", argc, argv);
}
