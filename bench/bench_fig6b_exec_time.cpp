// Fig. 6(b) — application execution time per interconnect, DRAM 200 ns.
//
// Paper: "3-D MoT reduces the execution time by 13.01%, 11.16%, and 13.34%
// on average, compared with 3-D Mesh, 3-D Hybrid Bus-Mesh, and 3-D Hybrid
// Bus-Tree, respectively."
#include <iostream>

#include "harness.hpp"

int main(int argc, char** argv) {
  using namespace mot3d;
  using namespace mot3d::bench;
  const Options opt = parse_options(argc, argv, 0.25);

  const std::vector<cluster::Fabric> fabrics = {
      cluster::Fabric::kTrueMesh3d, cluster::Fabric::kHybridBusMesh,
      cluster::Fabric::kHybridBusTree, cluster::Fabric::kMot};

  print_header("Fig. 6(b): execution time per interconnect (DRAM 200 ns)", opt);
  TextTable tbl("execution time in kilo-cycles (normalised to True 3-D Mesh)");
  std::vector<std::string> header = {"benchmark"};
  for (auto f : fabrics) header.push_back(cluster::fabric_name(f));
  tbl.set_header(header);

  Sweep sweep(opt, "fig6b_exec_time");
  for (const std::string& app : workload::splash2_names()) {
    for (cluster::Fabric f : fabrics) {
      sweep.add(app, f, core::PowerState::full(), mem::DramPreset::kDdr3_200ns);
    }
  }
  sweep.run();

  // reductions[i] = per-app reduction of MoT vs fabric i (i in 0..2).
  // Consume in queue order: apps outer, fabrics inner, same as above.
  std::vector<std::vector<double>> reductions(3);
  std::size_t k = 0;
  for (const std::string& app : workload::splash2_names()) {
    std::vector<double> cycles;
    for (std::size_t fi = 0; fi < fabrics.size(); ++fi) {
      cycles.push_back(static_cast<double>(sweep[k++].cycles));
    }
    std::vector<std::string> row = {app};
    for (double c : cycles) {
      row.push_back(fmt_fixed(c / 1000.0, 0) + " (" + fmt_fixed(c / cycles[0], 2) +
                    "x)");
    }
    tbl.add_row(row);
    for (int i = 0; i < 3; ++i) reductions[i].push_back(reduction(cycles[i], cycles[3]));
  }
  tbl.print(std::cout);

  const char* base_names[] = {"True 3-D Mesh", "3-D Hybrid Bus-Mesh",
                              "3-D Hybrid Bus-Tree"};
  const double paper[] = {0.1301, 0.1116, 0.1334};
  TextTable s("MoT execution-time reduction vs packet-switched baselines");
  s.set_header({"baseline", "measured avg", "paper avg"});
  for (int i = 0; i < 3; ++i) {
    s.add_row({base_names[i], fmt_percent(average(reductions[i])),
               fmt_percent(paper[i])});
  }
  s.print(std::cout);
  sweep.report();
  return 0;
}
