// mot3d_experiments — one CLI over the whole scenario registry.
//
//   mot3d_experiments list                      # every registered scenario
//   mot3d_experiments run <name>... [flags]     # run registered scenarios
//   mot3d_experiments trace <name> [flags]      # run with tracing+metrics on
//   mot3d_experiments grid --apps=... [flags]   # ad-hoc declarative grid
//   mot3d_experiments update-golden [name...]   # regenerate golden baselines
//   mot3d_experiments check-golden [name...]    # compare against baselines
//
// `run` takes the same flags as the bench binaries (--scale/--seed/
// --threads/--json/--scheduler/--trace/--metrics) plus --golden to force a
// scenario's pinned golden options (golden_scale + registry seed) — handy
// to eyeball exactly what the regression suite compares.
//
// `trace` is `run` for one scenario with observability on by default:
// --trace/--metrics fall back to <name>.trace.json / <name>.metrics.json.
// Open the trace in Perfetto (ui.perfetto.dev) or chrome://tracing.
//
// `grid` builds a one-off ScenarioSpec from comma-separated axis lists:
//   --apps=fft,fmm            (default: all eight SPLASH-2 programs)
//   --fabrics=mot,mesh3d,busmesh,bustree        (default: mot)
//   --states=Full,PC16-MB8,PC4-MB32,PC4-MB8,PC8-MB16,...  (default: Full)
//   --dram=200,63,42          (default: 200)
// Invalid combinations (gated states on packet-switched fabrics) are
// skipped with a note, exactly like registered sweeps.
//
// `update-golden` re-runs every golden scenario (or just the named ones)
// at its pinned golden options and rewrites tests/golden/<name>.json.
// This is the one sanctioned way to change a baseline: do it on purpose,
// look at the diff, and say why in the commit message (see DESIGN.md).
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>

#include "common/table.hpp"
#include "harness.hpp"
#include "sim/sweep_service.hpp"

namespace {

using namespace mot3d;

#ifndef MOT3D_SOURCE_DIR
#define MOT3D_SOURCE_DIR "."
#endif

void print_cli_usage(std::ostream& os) {
  os << "usage: mot3d_experiments <command> [flags]\n"
     << "  list | --list               list registered scenarios\n"
     << "  describe <name>...          print a scenario's axes and run count\n"
     << "  run <name>... [flags]       run registered scenarios by name\n"
     << "  trace <name> [flags]        run one scenario with tracing+metrics on\n"
     << "  grid [axes] [flags]         run an ad-hoc grid\n"
     << "  update-golden [name...]     regenerate golden baselines\n"
     << "  check-golden [name...]      re-run and diff against baselines\n"
     << "  serve --cache-dir=<path>    cache-backed request/response daemon\n"
     << "  batch --cache-dir=<path>    drain NDJSON requests (stdin or\n"
     << "                              --requests=<file>) through the cache\n"
     << "  cache stats|clear --cache-dir=<path>   inspect / empty the cache\n"
     << "flags: --scale=<d> --seed=<u64> --threads=<n> --json=<path>\n"
     << "       --scheduler=event|dense --timeout=<seconds> --golden\n"
     << "       --trace=<path> --metrics=<path>\n"
     << "grid axes: --apps=a,b --fabrics=mot,mesh3d,busmesh,bustree\n"
     << "           --states=Full,PC4-MB8,... --dram=200,63,42\n"
     << "update-golden/check-golden: --dir=<path> (default: " MOT3D_SOURCE_DIR
        "/tests/golden)\n"
     << "serve/batch: --cache-dir=<path> [--threads=<n>]\n"
     << "             [--scheduler=event|dense] [--max-cache-bytes=<n>]\n"
     << "             [--requests=<file>]  (scale/seed/timeout are\n"
     << "             per-request JSON fields, not flags)\n";
}

std::vector<std::string> split_csv(const std::string& flag, const std::string& v) {
  std::vector<std::string> out;
  std::stringstream ss(v);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  // "--apps=" or "--apps=,," must fail loudly, not silently mean "all".
  if (out.empty()) {
    throw std::invalid_argument("empty value in '" + flag +
                                "' (give a comma-separated list)");
  }
  return out;
}

void list_registered_names(std::ostream& os) {
  os << "registered scenarios:";
  for (const sim::ScenarioSpec& s : sim::all_scenarios()) os << " " << s.name;
  os << "\n";
}

int cmd_list() {
  TextTable tbl("registered scenarios (mot3d_experiments run <name>)");
  tbl.set_header({"name", "figure", "kind", "grid", "golden", "description"});
  for (const sim::ScenarioSpec& s : sim::all_scenarios()) {
    const char* kind = s.kind == sim::ScenarioSpec::Kind::kSweep    ? "sweep"
                       : s.kind == sim::ScenarioSpec::Kind::kTiming ? "timing"
                                                                    : "custom";
    tbl.add_row({s.name, s.figure, kind,
                 s.kind == sim::ScenarioSpec::Kind::kSweep
                     ? std::to_string(s.grid_size()) + " runs"
                     : "-",
                 s.has_golden ? "yes" : "-", s.description});
  }
  tbl.print(std::cout);
  return 0;
}

/// `describe <name>...` — everything one wants to know about a scenario's
/// grid *before* paying for the runs: the declared axes, the expanded run
/// count, and how many grid cells are dropped as invalid.
int cmd_describe(const std::vector<std::string>& names) {
  if (names.empty()) {
    std::cerr << "error: describe needs at least one scenario name (see list)\n";
    return 2;
  }
  for (const std::string& name : names) {
    if (sim::find_scenario(name) == nullptr) {
      std::cerr << "error: scenario '" << name << "' is not registered\n";
      list_registered_names(std::cerr);
      return 2;
    }
  }
  for (const std::string& name : names) {
    const sim::ScenarioSpec& s = *sim::find_scenario(name);
    const char* kind = s.kind == sim::ScenarioSpec::Kind::kSweep    ? "sweep"
                       : s.kind == sim::ScenarioSpec::Kind::kTiming ? "timing"
                                                                    : "custom";
    std::cout << "scenario: " << s.name << "\n"
              << "  figure: " << s.figure << "\n"
              << "  kind: " << kind << "\n"
              << "  description: " << s.description << "\n"
              << "  golden: "
              << (s.has_golden ? "yes (scale=" + std::to_string(s.golden_scale) +
                                     ", seed=" + std::to_string(s.seed) + ")"
                               : "no")
              << "\n";
    if (s.kind == sim::ScenarioSpec::Kind::kCustom) {
      std::cout << "  axes: none (self-driving custom body)\n"
                << "  expected runs: 1 invocation\n";
      continue;
    }
    if (s.kind == sim::ScenarioSpec::Kind::kTiming) {
      std::cout << "  axis states:";
      for (const auto& st : s.power_states) std::cout << " " << st.name();
      std::cout << "\n  expected runs: " << s.power_states.size()
                << " analytic rows (no simulation)\n";
      continue;
    }
    std::cout << "  axis apps (" << s.apps.size() << "):";
    for (const auto& a : s.apps) std::cout << " " << a;
    std::cout << "\n  axis fabrics (" << s.fabrics.size() << "):";
    for (auto f : s.fabrics) std::cout << " " << sim::fabric_key(f);
    std::cout << "\n  axis states (" << s.power_states.size() << "):";
    for (const auto& st : s.power_states) std::cout << " " << st.name();
    std::cout << "\n  axis dram (" << s.dram_presets.size() << "):";
    for (auto d : s.dram_presets)
      std::cout << " " << static_cast<int>(mem::dram_latency_ns(d)) << "ns";
    if (!s.thermal_envelopes.empty()) {
      std::cout << "\n  axis thermal envelopes: " << s.thermal_envelopes.size()
                << " (ambient x ceiling cells)";
    }
    if (!s.fault_envelopes.empty()) {
      std::cout << "\n  axis fault envelopes: " << s.fault_envelopes.size()
                << " (fault-rate x seed cells)";
    }
    if (!s.dram_backends.empty()) {
      std::cout << "\n  axis dram_backend (" << s.dram_backends.size() << "):";
      for (auto b : s.dram_backends)
        std::cout << " " << sim::dram_backend_key(b);
    }
    std::size_t skipped = 0;
    const std::size_t valid = sim::expand_grid(s, &skipped).size();
    std::cout << "\n  grid cells: " << s.grid_size() << "\n"
              << "  expected runs: " << valid;
    if (skipped > 0) {
      std::cout << " (" << skipped
                << " invalid cells skipped: " << sim::invalid_cell_reason()
                << ")";
    }
    std::cout << "\n";
  }
  return 0;
}

/// CLI-only flags peeled off per command; everything else passes through to
/// bench::parse_options, which rejects flags it does not know — so a flag
/// given to the wrong subcommand (`run --apps=...`, `update-golden
/// --scale=...`) fails loudly instead of being silently ignored.
struct CliArgs {
  std::vector<std::string> names;       ///< positional scenario names
  std::vector<std::string> bench_args;  ///< pass-through flags
  std::vector<std::string> apps;
  std::vector<std::string> fabrics;
  std::vector<std::string> states;
  std::vector<std::string> dram;
  std::string golden_dir = MOT3D_SOURCE_DIR "/tests/golden";
  bool use_golden_options = false;
  // serve/batch/cache flags (CliFlagSet::service)
  std::string cache_dir;
  std::string requests_path;
  std::uint64_t max_cache_bytes = 0;
  unsigned threads = 0;
  cluster::SchedulerMode scheduler = cluster::SchedulerMode::kEventDriven;
};

/// Which CLI-only flags a subcommand understands.
struct CliFlagSet {
  bool axes = false;     ///< --apps/--fabrics/--states/--dram  (grid)
  bool golden = false;   ///< --golden                          (run)
  bool dir = false;      ///< --dir                             (update-golden)
  bool service = false;  ///< --cache-dir/--requests/...        (serve/batch)
};

std::uint64_t parse_u64_flag(const std::string& flag, const std::string& v) {
  try {
    std::size_t used = 0;
    const std::uint64_t out = std::stoull(v, &used);
    if (used != v.size() || v.empty()) throw std::invalid_argument(v);
    return out;
  } catch (const std::exception&) {
    throw std::invalid_argument("malformed value in '" + flag +
                                "' (want a non-negative integer)");
  }
}

CliArgs parse_cli(int argc, char** argv, int first, const CliFlagSet& allow) {
  CliArgs out;
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    if (allow.axes && arg.rfind("--apps=", 0) == 0) {
      out.apps = split_csv(arg, arg.substr(7));
    } else if (allow.axes && arg.rfind("--fabrics=", 0) == 0) {
      out.fabrics = split_csv(arg, arg.substr(10));
    } else if (allow.axes && arg.rfind("--states=", 0) == 0) {
      out.states = split_csv(arg, arg.substr(9));
    } else if (allow.axes && arg.rfind("--dram=", 0) == 0) {
      out.dram = split_csv(arg, arg.substr(7));
    } else if (allow.dir && arg.rfind("--dir=", 0) == 0) {
      out.golden_dir = arg.substr(6);
    } else if (allow.service && arg.rfind("--cache-dir=", 0) == 0) {
      out.cache_dir = arg.substr(12);
    } else if (allow.service && arg.rfind("--requests=", 0) == 0) {
      out.requests_path = arg.substr(11);
    } else if (allow.service && arg.rfind("--max-cache-bytes=", 0) == 0) {
      out.max_cache_bytes = parse_u64_flag(arg, arg.substr(18));
    } else if (allow.service && arg.rfind("--threads=", 0) == 0) {
      out.threads = static_cast<unsigned>(parse_u64_flag(arg, arg.substr(10)));
    } else if (allow.service && arg.rfind("--scheduler=", 0) == 0) {
      const std::string mode = arg.substr(12);
      if (mode == "event") {
        out.scheduler = cluster::SchedulerMode::kEventDriven;
      } else if (mode == "dense") {
        out.scheduler = cluster::SchedulerMode::kDenseTick;
      } else {
        throw std::invalid_argument("unknown scheduler '" + mode +
                                    "' (want event|dense)");
      }
    } else if (allow.golden && arg == "--golden") {
      out.use_golden_options = true;
    } else if (arg.rfind("--", 0) == 0) {
      out.bench_args.push_back(arg);  // parse_options rejects unknown flags
    } else {
      out.names.push_back(arg);
    }
  }
  return out;
}

/// Re-pack the pass-through flags into an argv for bench::parse_options.
bench::Options parse_bench_flags(const CliArgs& cli, double default_scale) {
  std::vector<std::string> storage = cli.bench_args;
  std::vector<char*> argv = {const_cast<char*>("mot3d_experiments")};
  for (std::string& s : storage) argv.push_back(s.data());
  return bench::parse_options(static_cast<int>(argv.size()), argv.data(),
                              default_scale);
}

int cmd_run(const CliArgs& cli) {
  if (cli.names.empty()) {
    std::cerr << "error: run needs at least one scenario name (see list)\n";
    return 2;
  }
  // One output path cannot hold several scenarios' files; refuse rather
  // than silently keep only the last one written.
  if (cli.names.size() > 1) {
    for (const std::string& arg : cli.bench_args) {
      for (const char* flag : {"--json=", "--trace=", "--metrics="}) {
        if (arg.rfind(flag, 0) == 0) {
          std::cerr << "error: " << arg.substr(0, arg.find('='))
                    << " with multiple scenarios would overwrite the same "
                       "file; run them one at a time\n";
          return 2;
        }
      }
    }
  }
  // Validate every name up front: a typo in the third scenario must not
  // waste the first two runs before failing.
  for (const std::string& name : cli.names) {
    if (sim::find_scenario(name) == nullptr) {
      std::cerr << "error: scenario '" << name << "' is not registered\n";
      list_registered_names(std::cerr);
      return 2;
    }
  }
  for (const std::string& name : cli.names) {
    const sim::ScenarioSpec* spec = sim::find_scenario(name);
    sim::ScenarioOptions opt =
        bench::to_scenario_options(parse_bench_flags(cli, spec->default_scale));
    if (cli.use_golden_options) {
      // Golden options pin the modeled inputs (scale, seed); output paths
      // and the scheduler are observer-side and survive the override.
      const std::string json = opt.json_path;
      const std::string trace = opt.trace_path;
      const std::string metrics = opt.metrics_path;
      const auto scheduler = opt.scheduler;
      opt = sim::golden_options(*spec);
      opt.json_path = json;
      opt.trace_path = trace;
      opt.metrics_path = metrics;
      opt.scheduler = scheduler;
    }
    const int rc = sim::run_and_present(*spec, opt, std::cout);
    if (rc != 0) return rc;
  }
  return 0;
}

/// `trace <name>` — `run` for one scenario with observability on by
/// default: --trace/--metrics fall back to <name>.trace.json /
/// <name>.metrics.json next to the current directory.
int cmd_trace(const CliArgs& cli) {
  if (cli.names.size() != 1) {
    std::cerr << "error: trace takes exactly one scenario name (see list)\n";
    return 2;
  }
  const std::string& name = cli.names.front();
  const sim::ScenarioSpec* spec = sim::find_scenario(name);
  if (spec == nullptr) {
    std::cerr << "error: scenario '" << name << "' is not registered\n";
    list_registered_names(std::cerr);
    return 2;
  }
  if (spec->kind != sim::ScenarioSpec::Kind::kSweep) {
    std::cerr << "error: trace needs a sweep scenario ('" << name << "' is "
              << (spec->kind == sim::ScenarioSpec::Kind::kTiming ? "analytic"
                                                                 : "custom")
              << ", nothing to trace)\n";
    return 2;
  }
  sim::ScenarioOptions opt =
      bench::to_scenario_options(parse_bench_flags(cli, spec->default_scale));
  if (cli.use_golden_options) {
    const std::string json = opt.json_path;
    const std::string trace = opt.trace_path;
    const std::string metrics = opt.metrics_path;
    const auto scheduler = opt.scheduler;
    opt = sim::golden_options(*spec);
    opt.json_path = json;
    opt.trace_path = trace;
    opt.metrics_path = metrics;
    opt.scheduler = scheduler;
  }
  if (opt.trace_path.empty()) opt.trace_path = name + ".trace.json";
  if (opt.metrics_path.empty()) opt.metrics_path = name + ".metrics.json";
  return sim::run_and_present(*spec, opt, std::cout);
}

int cmd_grid(const CliArgs& cli) {
  if (!cli.names.empty()) {
    std::cerr << "error: grid takes axis flags, not positional names (got '"
              << cli.names.front() << "')\n";
    return 2;
  }
  sim::ScenarioSpec spec;
  spec.name = "adhoc_grid";
  spec.figure = "-";
  spec.description = "ad-hoc grid from the command line";
  spec.has_golden = false;
  spec.apps = cli.apps.empty() ? workload::splash2_names() : cli.apps;
  for (const std::string& a : spec.apps) {
    try {
      (void)workload::profile_by_name(a);
    } catch (const std::out_of_range&) {
      std::cerr << "error: unknown app '" << a << "' in --apps (want:";
      for (const std::string& n : workload::splash2_names()) std::cerr << " " << n;
      std::cerr << ")\n";
      return 2;
    }
  }
  try {
    if (cli.fabrics.empty()) {
      spec.fabrics = {cluster::Fabric::kMot};
    } else {
      for (const std::string& f : cli.fabrics) {
        spec.fabrics.push_back(sim::fabric_by_key(f));
      }
    }
    if (cli.states.empty()) {
      spec.power_states = {core::PowerState::full()};
    } else {
      for (const std::string& s : cli.states) {
        spec.power_states.push_back(sim::power_state_by_name(s));
      }
    }
    if (cli.dram.empty()) {
      spec.dram_presets = {mem::DramPreset::kDdr3_200ns};
    } else {
      for (const std::string& d : cli.dram) {
        spec.dram_presets.push_back(sim::dram_preset_by_key(d));
      }
    }
  } catch (const std::invalid_argument& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
  const sim::ScenarioOptions opt =
      bench::to_scenario_options(parse_bench_flags(cli, spec.default_scale));
  return sim::run_and_present(spec, opt, std::cout);
}

int cmd_update_golden(const CliArgs& cli) {
  // Baselines are only valid at each scenario's pinned golden options —
  // reject any attempt to bend them with run-time flags.
  if (!cli.bench_args.empty()) {
    std::cerr << "error: update-golden takes no run flags (got '"
              << cli.bench_args.front()
              << "'); baselines always use each scenario's golden options\n";
    return 2;
  }
  std::vector<std::string> names =
      cli.names.empty() ? sim::golden_scenario_names() : cli.names;
  std::error_code ec;
  std::filesystem::create_directories(cli.golden_dir, ec);
  for (const std::string& name : names) {
    const sim::ScenarioSpec* spec = sim::find_scenario(name);
    if (spec == nullptr || !spec->has_golden) {
      std::cerr << "error: '" << name << "' is not a golden scenario\n";
      return 2;
    }
    const sim::ScenarioOutcome out =
        sim::run_scenario(*spec, sim::golden_options(*spec));
    const std::string path = cli.golden_dir + "/" + name + ".json";
    std::ofstream f(path);
    if (!f) {
      std::cerr << "error: cannot write " << path << "\n";
      return 1;
    }
    f << sim::scenario_metrics_json(out);
    std::cout << "wrote " << path << " (" << (out.runs.empty()
                                                  ? out.timing_rows.size()
                                                  : out.results.size())
              << " entries)\n";
  }
  std::cout << "golden baselines updated — commit the diff together with the\n"
               "model change that motivated it (tests/test_golden_figures.cpp\n"
               "compares these files byte-for-byte under both schedulers).\n";
  return 0;
}

/// `check-golden` — the golden regression check as a CLI verb: re-run each
/// golden scenario at its pinned options and byte-compare against the
/// committed baseline.  Every failure path exits non-zero with one
/// structured "error: ..." line (missing file, mismatch, unknown name), so
/// scripts and CI steps can gate on it without parsing tables.
int cmd_check_golden(const CliArgs& cli) {
  if (!cli.bench_args.empty()) {
    std::cerr << "error: check-golden takes no run flags (got '"
              << cli.bench_args.front()
              << "'); baselines always use each scenario's golden options\n";
    return 2;
  }
  std::vector<std::string> names =
      cli.names.empty() ? sim::golden_scenario_names() : cli.names;
  int failures = 0;
  for (const std::string& name : names) {
    const sim::ScenarioSpec* spec = sim::find_scenario(name);
    if (spec == nullptr || !spec->has_golden) {
      std::cerr << "error: '" << name << "' is not a golden scenario\n";
      return 2;
    }
    const std::string path = cli.golden_dir + "/" + name + ".json";
    std::ifstream f(path, std::ios::binary);
    if (!f) {
      std::cerr << "error: missing golden baseline " << path
                << " (run update-golden " << name << ")\n";
      ++failures;
      continue;
    }
    std::ostringstream want;
    want << f.rdbuf();
    const sim::ScenarioOutcome out =
        sim::run_scenario(*spec, sim::golden_options(*spec));
    const std::string got = sim::scenario_metrics_json(out);
    if (got != want.str()) {
      std::cerr << "error: golden mismatch for " << name << " (" << path
                << "); inspect with update-golden --dir=<tmp> " << name
                << " and diff\n";
      ++failures;
      continue;
    }
    std::cout << "ok: " << name << " matches " << path << "\n";
  }
  if (failures > 0) {
    std::cerr << "error: " << failures << "/" << names.size()
              << " golden baselines failed\n";
    return 1;
  }
  return 0;
}

/// `serve` / `batch` — the sweep service (src/sim/sweep_service.hpp).
/// Modeled inputs (scale, seed, timeout) are per-request JSON fields, so
/// every run flag is rejected loudly: a --scale here would silently skew
/// what the cache memoizes.
int cmd_service(const CliArgs& cli, sim::ServiceLoopMode mode) {
  const char* verb = mode == sim::ServiceLoopMode::kServe ? "serve" : "batch";
  if (!cli.names.empty()) {
    std::cerr << "error: " << verb << " takes flags only (got '"
              << cli.names.front() << "')\n";
    return 2;
  }
  if (!cli.bench_args.empty()) {
    std::cerr << "error: " << verb << " takes no run flags (got '"
              << cli.bench_args.front()
              << "'); scale/seed/timeout_seconds are per-request fields\n";
    return 2;
  }
  if (cli.cache_dir.empty()) {
    std::cerr << "error: " << verb << " needs --cache-dir=<path>\n";
    return 2;
  }
  sim::ServiceConfig cfg;
  cfg.cache_dir = cli.cache_dir;
  cfg.threads = cli.threads;
  cfg.scheduler = cli.scheduler;
  cfg.max_cache_bytes = cli.max_cache_bytes;
  sim::SweepService service(cfg);  // throws on unwritable cache dir
  if (!cli.requests_path.empty()) {
    std::ifstream f(cli.requests_path, std::ios::binary);
    if (!f) {
      std::cerr << "error: cannot read requests file '" << cli.requests_path
                << "'\n";
      return 2;
    }
    return sim::service_loop(f, std::cout, service, mode);
  }
  return sim::service_loop(std::cin, std::cout, service, mode);
}

/// `cache stats` / `cache clear` — one JSON line each, so scripts can gate
/// on the cache without scraping tables.
int cmd_cache(const CliArgs& cli) {
  if (cli.names.size() != 1 ||
      (cli.names.front() != "stats" && cli.names.front() != "clear")) {
    std::cerr << "error: cache takes one verb: stats|clear\n";
    return 2;
  }
  if (!cli.bench_args.empty()) {
    std::cerr << "error: cache " << cli.names.front()
              << " takes no run flags (got '" << cli.bench_args.front()
              << "')\n";
    return 2;
  }
  if (cli.cache_dir.empty()) {
    std::cerr << "error: cache " << cli.names.front()
              << " needs --cache-dir=<path>\n";
    return 2;
  }
  sim::ServiceConfig cfg;
  cfg.cache_dir = cli.cache_dir;
  sim::SweepService service(cfg);  // throws on unwritable cache dir
  sim::JsonObject o;
  o.set("cache_dir", cfg.cache_dir);
  if (cli.names.front() == "stats") {
    const sim::CacheStats stats = service.cache_stats();
    o.set("entries", stats.entries).set("bytes", stats.bytes);
  } else {
    o.set("removed", static_cast<std::uint64_t>(service.cache_clear()));
  }
  std::cout << o.str() << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    print_cli_usage(std::cerr);
    return 2;
  }
  const std::string cmd = argv[1];
  if (cmd == "list" || cmd == "--list") return cmd_list();
  if (cmd == "--help" || cmd == "-h" || cmd == "help") {
    print_cli_usage(std::cout);
    return 0;
  }
  try {
    if (cmd == "describe") {
      const CliArgs cli = parse_cli(argc, argv, 2, {});
      if (!cli.bench_args.empty()) {
        std::cerr << "error: describe takes no flags (got '"
                  << cli.bench_args.front() << "')\n";
        return 2;
      }
      return cmd_describe(cli.names);
    }
    if (cmd == "run") return cmd_run(parse_cli(argc, argv, 2, {.golden = true}));
    if (cmd == "trace") {
      return cmd_trace(parse_cli(argc, argv, 2, {.golden = true}));
    }
    if (cmd == "grid") return cmd_grid(parse_cli(argc, argv, 2, {.axes = true}));
    if (cmd == "update-golden") {
      return cmd_update_golden(parse_cli(argc, argv, 2, {.dir = true}));
    }
    if (cmd == "check-golden") {
      return cmd_check_golden(parse_cli(argc, argv, 2, {.dir = true}));
    }
    if (cmd == "serve") {
      return cmd_service(parse_cli(argc, argv, 2, {.service = true}),
                         sim::ServiceLoopMode::kServe);
    }
    if (cmd == "batch") {
      return cmd_service(parse_cli(argc, argv, 2, {.service = true}),
                         sim::ServiceLoopMode::kBatch);
    }
    if (cmd == "cache") {
      return cmd_cache(parse_cli(argc, argv, 2, {.service = true}));
    }
  } catch (const std::invalid_argument& e) {
    // Malformed CLI-level flag values (e.g. an empty axis list).
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    // Anything else that escapes a command body (a scenario whose every
    // run is isolated still throws on config errors, bad alloc, ...) —
    // one structured line, non-zero exit, never a silent stack unwind.
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  std::cerr << "error: unknown command '" << cmd << "'\n";
  print_cli_usage(std::cerr);
  return 2;
}
