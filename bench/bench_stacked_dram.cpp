// Stacked-DRAM sweep: the vault-parallel 3-D backend (FR-FCFS, refresh
// interference, thermal vault remap) against the paper's constant-latency
// controller (see src/dram3d/).
#include "harness.hpp"

int main(int argc, char** argv) {
  return mot3d::bench::scenario_main("stacked_dram", argc, argv);
}
