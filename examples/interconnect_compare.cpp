// Interconnect comparison: run one application on all four fabrics — the
// circuit-switched 3-D MoT and the three packet-switched baselines — and
// contrast latency, execution time and interconnect energy (the paper's
// Section IV comparison, Fig. 6).
//
//   $ ./examples/interconnect_compare [app] [scale]
#include <iostream>
#include <string>

#include "cluster/cluster.hpp"
#include "common/table.hpp"

int main(int argc, char** argv) {
  using namespace mot3d;

  const std::string app = argc > 1 ? argv[1] : "raytrace";
  const double scale = argc > 2 ? std::stod(argv[2]) : 0.1;

  TextTable t(app + " on the four 3-D on-chip interconnects (DRAM 200 ns)");
  t.set_header({"fabric", "cycles", "norm T", "L2 hit lat (cy)", "p95", "icn dyn mJ",
                "icn leak mW"});

  double base = 0.0;
  for (cluster::Fabric f :
       {cluster::Fabric::kTrueMesh3d, cluster::Fabric::kHybridBusMesh,
        cluster::Fabric::kHybridBusTree, cluster::Fabric::kMot}) {
    cluster::ClusterConfig cfg = cluster::make_paper_config(
        workload::profile_by_name(app), f, core::PowerState::full(),
        mem::DramPreset::kDdr3_200ns, scale);
    cluster::Cluster c(cfg);
    const cluster::SimResult r = c.run();
    if (base == 0.0) base = static_cast<double>(r.cycles);
    t.add_row({r.fabric, std::to_string(r.cycles),
               fmt_fixed(static_cast<double>(r.cycles) / base, 3),
               fmt_fixed(r.l2_hit_latency.mean(), 1),
               std::to_string(r.l2_hit_latency.quantile(0.95)),
               fmt_fixed(r.energy.component_pj(power::Component::kInterconnect) * 1e-9,
                         3),
               fmt_fixed(c.interconnect().leakage_mw(), 1)});
  }
  t.print(std::cout);

  std::cout << "\nThe MoT's combinational routing+arbitration trees give it the\n"
               "lowest L2 access latency; the Bus-Tree's four shared vertical\n"
               "buses make it the worst under load (paper Fig. 6).\n";
  return 0;
}
