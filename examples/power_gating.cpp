// Runtime power-gating demonstration (paper Section III).
//
// Runs a workload on the Full connection, then — mid-execution — quiesces
// the interconnect, writes the dirty lines of the to-be-gated banks back
// to DRAM over the Miss bus, reprograms the routing switches' ctr signals
// into user-defined mode, and continues in PC16-MB8.  Shows the remap in
// action (logical -> physical banks) and the cost of the transition.
//
//   $ ./examples/power_gating [scale]
#include <iostream>

#include "cluster/cluster.hpp"
#include "common/table.hpp"
#include "core/reconfig.hpp"

int main(int argc, char** argv) {
  using namespace mot3d;
  const double scale = argc > 1 ? std::stod(argv[1]) : 0.05;

  cluster::ClusterConfig cfg = cluster::make_paper_config(
      workload::profile_by_name("fft"), cluster::Fabric::kMot,
      core::PowerState::full(), mem::DramPreset::kDdr3_200ns, scale);
  cluster::Cluster cluster(cfg);

  // Phase 1: run a while at Full connection to dirty the L2.
  cluster.step(30000);
  core::MotInterconnect* mot = cluster.mot();
  std::cout << "t=" << cluster.now() << "  state=" << mot->state().name()
            << "  L2 hits so far=" << cluster.l2().stats().hits << "\n";

  // Phase 2: quiesce — let in-flight transactions drain (cores stall on
  // their own; we simply stop issuing by stepping until the fabric idles).
  Cycle drain = 0;
  while (!cluster.interconnect().idle() && drain < 10000) {
    cluster.step(1);
    ++drain;
  }
  std::cout << "quiesced after " << drain << " cycles\n";

  // Phase 3: reconfigure to PC16-MB8.
  std::size_t dirty_before = 0;
  for (BankId b = 0; b < 32; ++b) dirty_before += cluster.l2().dirty_lines(b);
  core::ReconfigManager mgr(*mot, cluster.l2(), cluster.dram());
  const core::ReconfigCost cost =
      mgr.apply(core::PowerState::pc16_mb8(), cluster.now());

  TextTable t("reconfiguration Full -> PC16-MB8");
  t.set_header({"metric", "value"});
  t.add_row({"dirty lines in cluster before", std::to_string(dirty_before)});
  t.add_row({"dirty lines flushed (gated banks)",
             std::to_string(cost.dirty_lines_flushed)});
  t.add_row({"flush serialisation", std::to_string(cost.flush_cycles) + " cycles"});
  t.add_row({"ctr reprogramming", std::to_string(cost.reprogram_cycles) + " cycles"});
  t.add_row({"flush energy", fmt_fixed(cost.flush_energy_pj / 1000.0, 1) + " nJ"});
  t.add_row({"L2 latency now",
             std::to_string(mot->state_timing().l2_round_trip()) + " cycles (was 12)"});
  t.print(std::cout);

  // The user-defined routing switches in action: logical banks fold onto
  // the powered centre group exactly as in the paper's Fig. 4.
  TextTable remap("bank remap under PC16-MB8 (centre fold)");
  remap.set_header({"logical", "physical", "logical", "physical"});
  for (BankId b = 0; b < 16; ++b) {
    remap.add_row({"M" + std::to_string(b), "M" + std::to_string(mot->route(b)),
                   "M" + std::to_string(b + 16),
                   "M" + std::to_string(mot->route(b + 16))});
  }
  remap.print(std::cout);

  // Phase 4: continue to completion in the gated state.
  const cluster::SimResult r = cluster.run();
  std::cout << "\nfinished at t=" << r.cycles << "  (state " << mot->state().name()
            << ", " << cluster.l2().num_active_banks() << " banks, "
            << "interconnect leakage " << fmt_fixed(mot->leakage_mw(), 1)
            << " mW vs " << fmt_fixed(core::MotTimingModel(cfg.tech, cfg.floorplan,
                                                           cfg.l2_bank_sram)
                                          .leakage_mw(core::PowerState::full()),
                                      1)
            << " mW at Full)\n";
  return 0;
}
