// Quickstart: build the paper's 3-D multi-core cluster (16 ARM-class cores,
// 32 stacked L2 banks, circuit-switched 3-D MoT interconnect), run one
// SPLASH-2-style workload, and print the headline metrics.
//
//   $ ./examples/quickstart [app] [scale]
//
// Apps: cholesky fft volrend raytrace fmm radix ocean_contiguous
//       water_nsquared            (default: fft at scale 0.1)
#include <iostream>
#include <string>

#include "cluster/cluster.hpp"
#include "common/table.hpp"

int main(int argc, char** argv) {
  using namespace mot3d;

  const std::string app = argc > 1 ? argv[1] : "fft";
  const double scale = argc > 2 ? std::stod(argv[2]) : 0.1;

  // 1. Describe the system: Table I architecture + the 3-D MoT fabric in
  //    its Full-connection power state, off-chip DDR3 at 200 ns.
  cluster::ClusterConfig cfg = cluster::make_paper_config(
      workload::profile_by_name(app), cluster::Fabric::kMot,
      core::PowerState::full(), mem::DramPreset::kDdr3_200ns, scale);

  // 2. Build and run to completion.
  cluster::Cluster cluster(cfg);
  const cluster::SimResult r = cluster.run();

  // 3. Report.
  std::cout << "app=" << r.app << "  fabric=" << r.fabric
            << "  state=" << r.power_state << "  dram=" << r.dram_latency_ns
            << "ns\n\n";

  TextTable t("run summary");
  t.set_header({"metric", "value"});
  t.add_row({"execution time", std::to_string(r.cycles) + " cycles (" +
                                   fmt_fixed(r.cycles / 1e6, 3) + " ms @1GHz)"});
  t.add_row({"instructions", std::to_string(r.instructions)});
  t.add_row({"IPC (all cores)", fmt_fixed(r.ipc(), 2)});
  t.add_row({"L1D miss rate", fmt_percent(r.l1d_miss_rate)});
  t.add_row({"L2 accesses", std::to_string(r.l2.accesses())});
  t.add_row({"L2 hit rate", fmt_percent(r.l2.hit_rate())});
  t.add_row({"L2 access latency (hits)", fmt_fixed(r.l2_hit_latency.mean(), 1) +
                                             " cycles (min " +
                                             std::to_string(r.l2_hit_latency.min()) +
                                             ")"});
  t.add_row({"DRAM reads", std::to_string(r.dram.reads)});
  t.add_row({"energy (core+L1+L2+icn)",
             fmt_fixed(r.energy.edp_energy_pj() * 1e-9, 3) + " mJ"});
  t.add_row({"average power", fmt_fixed(r.avg_power_w, 3) + " W"});
  t.add_row({"EDP", fmt_fixed(r.edp_pj_s * 1e-9, 6) + " mJ*s"});
  t.print(std::cout);

  std::cout << "\nTip: examples/interconnect_compare runs the same app on all\n"
               "four fabrics; examples/power_gating demonstrates runtime\n"
               "reconfiguration; examples/power_state_explorer sweeps states\n"
               "and DRAM latencies.\n";
  return 0;
}
