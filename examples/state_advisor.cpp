// State-advisor walkthrough: profile every SPLASH-2 app at Full connection,
// let the advisor pick a Table I power state from the observed parallelism
// scalability and L2 demand, then verify the choice by running it — the
// closed loop the paper's conclusion argues for.
//
//   $ ./examples/state_advisor [scale] [dram: 200|63|42]
#include <iostream>
#include <string>

#include "cluster/advisor.hpp"
#include "common/table.hpp"

int main(int argc, char** argv) {
  using namespace mot3d;

  const double scale = argc > 1 ? std::stod(argv[1]) : 0.2;
  mem::DramPreset preset = mem::DramPreset::kDdr3_200ns;
  if (argc > 2) {
    const std::string d = argv[2];
    if (d == "63") preset = mem::DramPreset::kWideIo_63ns;
    if (d == "42") preset = mem::DramPreset::kWeis3d_42ns;
  }

  std::cout << "profiling at Full connection, DRAM "
            << mem::dram_preset_name(preset) << ", scale " << scale << "\n\n";

  TextTable t("advisor decisions and their payoff");
  t.set_header({"app", "spin ratio", "resident L2", "chosen state", "EDP vs Full"});

  for (const std::string& app : workload::splash2_names()) {
    const cluster::SimResult full =
        cluster::Cluster(cluster::make_paper_config(
                             workload::profile_by_name(app), cluster::Fabric::kMot,
                             core::PowerState::full(), preset, scale, 42))
            .run();
    const cluster::StateRecommendation rec = cluster::recommend_power_state(full);

    double edp_norm = 1.0;
    if (!(rec.state == core::PowerState::full())) {
      const cluster::SimResult gated =
          cluster::Cluster(cluster::make_paper_config(
                               workload::profile_by_name(app), cluster::Fabric::kMot,
                               rec.state, preset, scale, 42))
              .run();
      edp_norm = gated.edp_pj_s / full.edp_pj_s;
    }
    t.add_row({app, fmt_fixed(rec.spin_ratio, 2),
               std::to_string(rec.resident_l2_bytes / 1024) + "KB", rec.state.name(),
               fmt_fixed(edp_norm, 2)});
  }
  t.print(std::cout);

  std::cout << "\nEDP < 1.00 means the advisor's state beats Full connection —\n"
               "the reconfigurable MoT turns those decisions into pure savings\n"
               "because gated states are also lower-latency (Table I).\n";
  return 0;
}
