// Power-state explorer: sweep every (power state x DRAM latency) pair for
// one application and report execution time, energy split, EDP and the L2
// behaviour behind them — the decision data a runtime power manager would
// use to pick a state per application (the paper's central argument).
//
//   $ ./examples/power_state_explorer [app] [scale]
#include <iostream>
#include <string>

#include "cluster/cluster.hpp"
#include "common/table.hpp"

int main(int argc, char** argv) {
  using namespace mot3d;

  const std::string app = argc > 1 ? argv[1] : "cholesky";
  const double scale = argc > 2 ? std::stod(argv[2]) : 0.1;

  for (auto preset : {mem::DramPreset::kDdr3_200ns, mem::DramPreset::kWideIo_63ns,
                      mem::DramPreset::kWeis3d_42ns}) {
    TextTable t(std::string(app) + " @ " + mem::dram_preset_name(preset));
    t.set_header({"state", "cycles", "norm T", "L2 hit%", "L2 lat", "bank-wait",
                  "dram rd", "core mJ", "L2 mJ", "icn mJ", "EDP norm"});
    double base_cycles = 0.0, base_edp = 0.0;
    for (const core::PowerState& s : core::PowerState::paper_states()) {
      cluster::ClusterConfig cfg = cluster::make_paper_config(
          workload::profile_by_name(app), cluster::Fabric::kMot, s, preset, scale);
      const cluster::SimResult r = cluster::Cluster(cfg).run();
      if (s.name() == "Full") {
        base_cycles = static_cast<double>(r.cycles);
        base_edp = r.edp_pj_s;
      }
      t.add_row({s.name(), std::to_string(r.cycles),
                 fmt_fixed(r.cycles / base_cycles, 2),
                 fmt_percent(r.l2.hit_rate()),
                 fmt_fixed(r.l2_hit_latency.mean(), 1),
                 std::to_string(r.l2.bank_conflict_cycles),
                 std::to_string(r.dram.reads),
                 fmt_fixed(r.energy.component_pj(power::Component::kCore) * 1e-9, 2),
                 fmt_fixed(r.energy.component_pj(power::Component::kL2) * 1e-9, 2),
                 fmt_fixed(r.energy.component_pj(power::Component::kInterconnect) * 1e-9,
                           2),
                 fmt_fixed(r.edp_pj_s / base_edp, 2)});
    }
    t.print(std::cout);
    std::cout << '\n';
  }
  return 0;
}
